// E4 — the crossover structure of Table 1: at fixed n, sweep the
// conductance dial (ring-of-cliques: many small cliques -> few big ones)
// and watch who wins on messages.
//
// Claimed shape: flooding's Θ(m) grows with density; ours grows like
// √(n·tmix/Φ) — so flooding wins on the sparse/low-Φ end (where Ω(m) is
// small but tmix is huge) and loses on the well-connected end. The
// Gilbert-style baseline pays tmix·√n — worst in the middle.
#include "bench/common.h"

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(3);
    scenario_runner runner = opt.make_runner();

    // n nodes arranged as c cliques of s = n/c nodes. Long rings have
    // cycle-like tmix = Θ(c²·s²), which multiplies every protocol's round
    // budget — quick mode stays at n = 64 where the whole dial is cheap.
    std::vector<std::pair<std::size_t, std::size_t>> shapes;
    if (opt.quick) {
        shapes = {{16, 4}, {8, 8}, {4, 16}};
    } else {
        shapes = {{64, 4}, {32, 8}, {16, 16}, {8, 32}, {4, 64}};
    }

    std::vector<graph> dials;
    dials.reserve(shapes.size());
    for (const auto& [c, s] : shapes) dials.push_back(make_ring_of_cliques(c, s));

    // Three protocols per dial position, fanned out as one batch.
    std::vector<scenario> batch;
    for (const graph& g : dials) {
        scenario fm{"", &g, flood_cfg{}, 800, seeds};
        scenario ours{"", &g, irrevocable_cfg{}, 900, seeds};
        scenario gb{"", &g, gilbert_cfg{}, 1000, seeds};
        batch.push_back(fm);
        batch.push_back(ours);
        batch.push_back(gb);
    }
    const auto results = runner.run_batch(batch);

    text_table t({"cliques x size", "m", "tmix", "phi", "flood(msgs)",
                  "ours(msgs)", "gilbert(msgs)", "winner"});
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        const auto& [c, s] = shapes[i];
        const auto& prof = results[3 * i].profile;
        const sample_stats fm = results[3 * i].messages();
        const sample_stats om = results[3 * i + 1].messages();
        const sample_stats gm = results[3 * i + 2].messages();
        const char* winner = "flood";
        double best = fm.mean();
        if (om.mean() < best) {
            winner = "ours";
            best = om.mean();
        }
        if (gm.mean() < best) winner = "gilbert";
        t.add_row({std::to_string(c) + "x" + std::to_string(s),
                   std::to_string(prof.m), std::to_string(prof.mixing_time),
                   fmt_fixed(prof.conductance, 5), fmt_mean_sd(fm), fmt_mean_sd(om),
                   fmt_mean_sd(gm), winner});
    }

    emit(t, opt,
         "E4a: conductance dial (ring of cliques) — low-Φ regime");
    std::printf("\nFinding: the ring-of-cliques dial never leaves the low-Φ"
                "\nregime (the bottleneck stays 2 bridge edges while volume"
                "\ngrows), so change-triggered flooding stays cheapest across"
                "\nit — consistent with Table 1's sparse column.\n");

    // E4b: the actual Ω(m)-crossover lives on *dense well-connected*
    // graphs, where m = Θ(n²) while ours pays Õ(√(n·tmix/Φ)) = Õ(n^1/2+).
    std::vector<std::size_t> dense_sizes =
        opt.quick ? std::vector<std::size_t>{64, 128, 256}
                  : std::vector<std::size_t>{64, 128, 256, 512};
    std::vector<scenario> dense_batch;
    for (std::size_t n : dense_sizes) {
        family_spec spec{graph_family::complete, n, 1};
        dense_batch.push_back(scenario{"", spec, flood_cfg{}, 1100, seeds});
        dense_batch.push_back(scenario{"", spec, irrevocable_cfg{}, 1150, seeds});
    }
    const auto dense = runner.run_batch(dense_batch);

    text_table d({"graph", "m", "flood(msgs)", "ours(msgs)", "winner"});
    for (std::size_t i = 0; i < dense_sizes.size(); ++i) {
        const sample_stats fm = dense[2 * i].messages();
        const sample_stats om = dense[2 * i + 1].messages();
        d.add_row({dense[2 * i].topology->name(),
                   std::to_string(dense[2 * i].profile.m), fmt_mean_sd(fm),
                   fmt_mean_sd(om), om.mean() < fm.mean() ? "OURS" : "flood"});
    }
    emit(d, opt, "E4b: dense crossover — Theorem 1 vs the Omega(m) class");
    std::printf("\nShape check: flooding wins while m is small; ours takes"
                "\nover between complete(128) and complete(256) and the gap"
                "\nwidens with n — Theorem 1 beats the Omega(m) bound exactly"
                "\non well-connected dense graphs.\n");
    return 0;
}
