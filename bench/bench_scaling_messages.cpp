// E2 — Theorem 1's message-complexity claim, as a scaling series.
//
// Measures messages vs n for our irrevocable protocol and the
// Gilbert-style baseline on families spanning the (Φ, tmix) landscape,
// fits empirical log-log exponents, and prints the per-n improvement
// factor. Claimed shape: ours = Õ(√(n·tmix/Φ)) vs theirs =
// Õ(tmix·√n), i.e. an improvement factor Õ(√(tmix·Φ)) ≥ 1, growing when
// tmix = ω(1/Φ).
#include "bench/common.h"

#include <cmath>

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(3);
    scenario_runner runner = opt.make_runner();

    struct series {
        graph_family family;
        std::vector<std::size_t> sizes;
    };
    std::vector<series> plan;
    if (opt.quick) {
        plan.push_back({graph_family::random_regular, {64, 128, 256}});
    } else {
        plan.push_back({graph_family::random_regular, {64, 128, 256, 512, 1024}});
        plan.push_back({graph_family::hypercube, {64, 128, 256, 512, 1024}});
        plan.push_back({graph_family::torus, {64, 144, 256, 400}});
    }

    // Two scenarios (ours, gilbert) per (family, n), one flat batch.
    std::vector<scenario> batch;
    for (const auto& [fam, sizes] : plan) {
        for (std::size_t n : sizes) {
            family_spec spec{fam, n, 1};
            batch.push_back(scenario{"", spec, irrevocable_cfg{}, 500, seeds});
            batch.push_back(scenario{"", spec, gilbert_cfg{}, 600, seeds});
        }
    }
    const auto results = runner.run_batch(batch);

    text_table t({"family", "n", "tmix", "phi", "ours(msgs)", "gilbert(msgs)",
                  "improvement", "sqrt(tmix*phi)", "ours ok", "gb ok"});

    std::size_t idx = 0;
    for (const auto& [fam, sizes] : plan) {
        std::vector<double> xs, ours_yc, gb_yc;
        for (std::size_t n : sizes) {
            (void)n;
            const auto& ours = results[idx++];
            const auto& gb = results[idx++];
            const auto& prof = ours.profile;
            const sample_stats om = ours.messages();
            const sample_stats gm = gb.messages();
            const auto tmix = std::max<std::uint64_t>(prof.mixing_time, 1);
            const double factor = gm.mean() / om.mean();
            const double theory =
                std::sqrt(static_cast<double>(tmix) * prof.conductance);
            t.add_row({to_string(fam), std::to_string(prof.n),
                       std::to_string(prof.mixing_time),
                       fmt_fixed(prof.conductance, 4), fmt_mean_sd(om),
                       fmt_mean_sd(gm), fmt_ratio(factor), fmt_fixed(theory, 2),
                       ours.success_ratio(), gb.success_ratio()});
            xs.push_back(static_cast<double>(prof.n));
            ours_yc.push_back(om.mean());
            gb_yc.push_back(gm.mean());
        }
        if (xs.size() >= 3) {
            std::printf("[%s] empirical exponents: ours n^%.2f, gilbert n^%.2f"
                        " (claims: ~0.5 + tmix growth for both; gap = sqrt(tmix*phi))\n",
                        to_string(fam), loglog_slope(xs, ours_yc),
                        loglog_slope(xs, gb_yc));
        }
    }

    emit(t, opt, "E2: messages vs n — ours vs Gilbert-style (Theorem 1)");
    return 0;
}
