// E2 — Theorem 1's message-complexity claim, as a scaling series.
//
// Measures messages vs n for our irrevocable protocol and the
// Gilbert-style baseline on families spanning the (Φ, tmix) landscape,
// fits empirical log-log exponents, and prints the per-n improvement
// factor. Claimed shape: ours = Õ(√(n·tmix/Φ)) vs theirs =
// Õ(tmix·√n), i.e. an improvement factor Õ(√(tmix·Φ)) ≥ 1, growing when
// tmix = ω(1/Φ).
#include "bench/common.h"

#include <cmath>

#include "baseline/gilbert_le.h"
#include "core/irrevocable.h"

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(3);
    profile_cache profiles;

    struct series {
        graph_family family;
        std::vector<std::size_t> sizes;
    };
    std::vector<series> plan;
    if (opt.quick) {
        plan.push_back({graph_family::random_regular, {64, 128, 256}});
    } else {
        plan.push_back({graph_family::random_regular, {64, 128, 256, 512, 1024}});
        plan.push_back({graph_family::hypercube, {64, 128, 256, 512, 1024}});
        plan.push_back({graph_family::torus, {64, 144, 256, 400}});
    }

    text_table t({"family", "n", "tmix", "phi", "ours(msgs)", "gilbert(msgs)",
                  "improvement", "sqrt(tmix*phi)", "ours ok", "gb ok"});

    for (const auto& [fam, sizes] : plan) {
        std::vector<double> xs, ours_yc, gb_yc;
        for (std::size_t n : sizes) {
            graph g = make_family(fam, n, 1);
            const auto& prof = profiles.get(g);

            irrevocable_params ip;
            ip.n = prof.n;
            ip.tmix = std::max<std::uint64_t>(prof.mixing_time, 1);
            ip.phi = prof.conductance;
            gilbert_params gp;
            gp.n = prof.n;
            gp.tmix = ip.tmix;

            sample_stats om, gm;
            int ook = 0, gok = 0;
            for (std::size_t s = 0; s < seeds; ++s) {
                const auto ir = run_irrevocable(g, ip, 500 + s);
                om.add(static_cast<double>(ir.totals.messages));
                ook += ir.success;
                const auto gr = run_gilbert(g, gp, 600 + s);
                gm.add(static_cast<double>(gr.totals.messages));
                gok += gr.success;
            }
            const double factor = gm.mean() / om.mean();
            const double theory =
                std::sqrt(static_cast<double>(ip.tmix) * ip.phi);
            t.add_row({to_string(fam), std::to_string(prof.n),
                       std::to_string(prof.mixing_time),
                       fmt_fixed(prof.conductance, 4), fmt_mean_sd(om),
                       fmt_mean_sd(gm), fmt_ratio(factor), fmt_fixed(theory, 2),
                       std::to_string(ook) + "/" + std::to_string(seeds),
                       std::to_string(gok) + "/" + std::to_string(seeds)});
            xs.push_back(static_cast<double>(prof.n));
            ours_yc.push_back(om.mean());
            gb_yc.push_back(gm.mean());
        }
        if (xs.size() >= 3) {
            std::printf("[%s] empirical exponents: ours n^%.2f, gilbert n^%.2f"
                        " (claims: ~0.5 + tmix growth for both; gap = sqrt(tmix*phi))\n",
                        to_string(fam), loglog_slope(xs, ours_yc),
                        loglog_slope(xs, gb_yc));
        }
    }

    emit(t, opt, "E2: messages vs n — ours vs Gilbert-style (Theorem 1)");
    return 0;
}
