// E9 — Lemmas 3-5: the diffusion core of the Revocable LE algorithm.
//
//  (a) convergence: max relative error to the average vs rounds; the
//      measured round count to reach γ-accuracy vs Lemma 4's bound
//      (2/φ²)·log(n/γ) with φ = i(G)/D;
//  (b) threshold separation (Lemma 5): with ≥1 white node and
//      k^{1+ε} ≥ 2n+1, every potential ends below τ(k);
//  (c) exact dyadic vs double potentials: value agreement and the bit
//      cost of exactness (the ω(log n)-bit payloads the paper transmits
//      bit by bit).
#include "bench/common.h"

#include <cmath>

#include "core/diffusion.h"
#include "core/params.h"
#include "graph/properties.h"

using namespace anole;
using namespace anole::bench;

namespace {

struct diff_outcome {
    double max_rel_err = 0;
    double max_potential = 0;
    std::uint64_t bits = 0;
    std::uint64_t congest_rounds = 0;
};

diff_outcome run_diff(const graph& g, bool exact, std::size_t log2_d,
                      std::uint64_t rounds, double black_fraction,
                      std::uint64_t seed) {
    engine<diffusion_node> eng(g, seed, congest_budget::fragmenting(16));
    xoshiro256ss color(derive_seed(seed, 0, 0xD1FF));
    std::size_t blacks = 0;
    eng.spawn([&](std::size_t u) {
        const bool black = color.bernoulli(black_fraction);
        blacks += black ? 1 : 0;
        return diffusion_node(g.degree(static_cast<node_id>(u)), black ? 1.0 : 0.0,
                              exact, log2_d, rounds);
    });
    eng.run_until_halted(rounds + 2);
    const double avg =
        static_cast<double>(blacks) / static_cast<double>(g.num_nodes());
    diff_outcome out;
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        const double v = eng.node(u).potential();
        out.max_potential = std::max(out.max_potential, v);
        if (avg > 0) {
            out.max_rel_err = std::max(out.max_rel_err, std::abs(v - avg) / avg);
        }
    }
    out.bits = eng.metrics().total().bits;
    out.congest_rounds = eng.metrics().total().congest_rounds;
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    scenario_runner runner = opt.make_runner();

    // (a) convergence vs Lemma 4's bound.
    {
        text_table t({"graph", "i(G)", "D", "lemma4 rounds", "rel err @ bound",
                      "rel err @ bound/4"});
        std::vector<graph> graphs;
        graphs.push_back(make_cycle(16));
        graphs.push_back(make_complete(16));
        if (!opt.quick) {
            graphs.push_back(make_torus(6, 6));
            graphs.push_back(make_star(16));
        }
        const double gamma = 0.05;
        for (const graph& g : graphs) {
            const double iso = g.num_nodes() <= 20
                                   ? isoperimetric_exact(g)
                                   : runner.profile_for(g).isoperimetric;
            const std::size_t log2_d = 6;  // D = 64 >= 2*deg everywhere here
            const double phi = iso / 64.0;
            const auto bound = static_cast<std::uint64_t>(std::ceil(
                2.0 / (phi * phi) *
                std::log(static_cast<double>(g.num_nodes()) / gamma)));
            const auto full = run_diff(g, false, log2_d, bound, 0.5, 42);
            const auto quarter = run_diff(g, false, log2_d, bound / 4, 0.5, 42);
            t.add_row({g.name(), fmt_fixed(iso, 3), "64", fmt_count(bound),
                       fmt_fixed(full.max_rel_err, 4),
                       fmt_fixed(quarter.max_rel_err, 4)});
        }
        emit(t, opt, "E9a: Lemma 4 round bound vs measured convergence (gamma=0.05)");
    }

    // (b) Lemma 5 threshold separation.
    {
        text_table t({"n", "k", "K=k^2", "tau(k)", "max potential", "below tau"});
        revocable_params rp;  // ε = 1
        for (std::size_t n : {4u, 8u, 12u}) {
            graph g = make_cycle(std::max<std::size_t>(n, 3));
            // smallest k with k^2 >= 2n+1:
            std::uint64_t k = 2;
            while (k * k < 2 * g.num_nodes() + 1) k *= 2;
            const auto tau = rp.tau(k);
            const double tau_v = static_cast<double>(tau.num) /
                                 static_cast<double>(tau.den);
            const std::size_t log2_d = rp.share_denominator_log2(k);
            const auto r = rp.diffusion_rounds(k);  // blind-mode bound
            // Force >= 1 white: black fraction < 1.
            const auto out =
                run_diff(g, false, log2_d, std::min<std::uint64_t>(r, 200'000),
                         0.75, 7);
            t.add_row({std::to_string(g.num_nodes()), std::to_string(k),
                       std::to_string(k * k), fmt_fixed(tau_v, 4),
                       fmt_fixed(out.max_potential, 4),
                       out.max_potential <= tau_v ? "yes" : "NO"});
        }
        emit(t, opt, "E9b: Lemma 5 — potentials end below tau once k^2 >= 2n+1");
    }

    // (c) exact vs approx ablation.
    {
        text_table t({"rounds", "exact bits", "approx bits(charged)",
                      "exact congest rounds", "value agreement"});
        graph g = make_cycle(8);
        for (std::uint64_t rounds : {8u, 16u, 32u, 64u}) {
            const auto ex = run_diff(g, true, 5, rounds, 0.5, 9);
            const auto ap = run_diff(g, false, 5, rounds, 0.5, 9);
            t.add_row({std::to_string(rounds), fmt_count(ex.bits),
                       fmt_count(ap.bits), fmt_count(ex.congest_rounds),
                       fmt_fixed(std::abs(ex.max_potential - ap.max_potential), 9)});
        }
        emit(t, opt, "E9c: exact dyadic vs double potentials (bit cost of exactness)");
    }

    std::printf("\nShape checks: error at Lemma 4's bound << gamma and error"
                "\nat bound/4 visibly larger; every Lemma 5 row says 'yes';"
                "\nexact bits grow quadratically with rounds (mantissa growth"
                "\n~log2(D)/round), matching the paper's i*log(2k^(1+e))"
                "\nper-iteration charge.\n");
    return 0;
}
