// E6 — Theorem 3 / Corollary 1: Revocable LE complexity, both rows.
//
// Part 1 (faithful): paper parameters verbatim on tiny graphs — blind vs
// known-i(G); congest_rounds shows the bit-by-bit charging of Theorem 3's
// time analysis.
// Part 2 (scaled): same control flow, scaled phase lengths (documented
// substitution) across families and sizes: time-to-stable-leader,
// messages, revocations, and the blind/informed ratio whose shape is
// (n·i(G)/2)² per the two bounds.
#include "bench/common.h"

#include "core/revocable.h"
#include "graph/properties.h"

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(3);
    profile_cache profiles;

    {
        text_table t({"graph", "mode", "ok", "rounds", "congest rounds",
                      "messages", "final k", "revocations"});
        struct cfg {
            graph g;
            bool informed;
        };
        std::vector<cfg> cases;
        cases.push_back({make_cycle(4), false});
        cases.push_back({make_cycle(4), true});
        if (!opt.quick) {
            cases.push_back({make_complete(6), true});
            cases.push_back({make_path(4), true});
        }
        for (auto& [g, informed] : cases) {
            auto p = revocable_params::paper_faithful(
                informed ? std::optional<double>(isoperimetric_exact(g))
                         : std::nullopt);
            p.exact_potentials = false;  // approx values, charged bit accounting
            sample_stats rounds, congest, msgs, revs;
            std::uint64_t final_k = 0;
            int ok = 0;
            for (std::size_t s = 0; s < seeds; ++s) {
                const auto r = run_revocable(g, p, 1100 + s, 120'000'000);
                ok += r.success;
                rounds.add(static_cast<double>(r.rounds));
                congest.add(static_cast<double>(r.congest_rounds));
                msgs.add(static_cast<double>(r.totals.messages));
                revs.add(static_cast<double>(r.total_revocations));
                final_k = std::max(final_k, r.final_estimate);
            }
            t.add_row({g.name(), informed ? "i(G) known" : "blind",
                       std::to_string(ok) + "/" + std::to_string(seeds),
                       fmt_mean_sd(rounds), fmt_mean_sd(congest), fmt_mean_sd(msgs),
                       std::to_string(final_k),
                       fmt_fixed(revs.mean(), 1)});
        }
        emit(t, opt, "E6a: faithful paper parameters (tiny n)");
    }

    {
        text_table t({"family", "n", "mode", "ok", "rounds", "messages",
                      "revocations", "nodes chose"});
        struct row {
            graph_family family;
            std::size_t n;
        };
        std::vector<row> plan;
        if (opt.quick) {
            plan = {{graph_family::cycle, 8}, {graph_family::torus, 16}};
        } else {
            plan = {{graph_family::cycle, 8},      {graph_family::cycle, 16},
                    {graph_family::cycle, 32},     {graph_family::torus, 16},
                    {graph_family::torus, 36},     {graph_family::complete, 16},
                    {graph_family::random_regular, 32},
                    {graph_family::star, 16},      {graph_family::erdos_renyi, 32}};
        }
        for (const auto& [fam, n] : plan) {
            graph g = make_family(fam, n, 3);
            const auto& prof = profiles.get(g);
            for (int informed = 0; informed < 2; ++informed) {
                auto p = revocable_params::scaled(
                    informed ? std::optional<double>(prof.isoperimetric)
                             : std::nullopt,
                    0.02, 0.12);
                // A scaled run that never certifies would climb the k
                // ladder forever (each estimate ~100x dearer): cap it so
                // failures are reported, not waited for.
                p.k_cap = 64;
                sample_stats rounds, msgs, revs, chose;
                int ok = 0;
                for (std::size_t s = 0; s < seeds; ++s) {
                    const auto r = run_revocable(g, p, 1200 + s, 30'000'000);
                    ok += r.success;
                    rounds.add(static_cast<double>(r.rounds));
                    msgs.add(static_cast<double>(r.totals.messages));
                    revs.add(static_cast<double>(r.total_revocations));
                    chose.add(static_cast<double>(r.nodes_chose));
                }
                t.add_row({to_string(fam), std::to_string(g.num_nodes()),
                           informed ? "i(G)" : "blind",
                           std::to_string(ok) + "/" + std::to_string(seeds),
                           fmt_mean_sd(rounds), fmt_mean_sd(msgs),
                           fmt_fixed(revs.mean(), 1), fmt_fixed(chose.mean(), 1)});
            }
        }
        emit(t, opt, "E6b: scaled policy across families (substituted lengths)");
    }

    std::printf("\nShape checks: informed <= blind in rounds and messages;"
                "\nmessages/round ~ 2m (every node broadcasts every round);"
                "\nrevocations > 0 then quiescence (success requires it).\n");
    return 0;
}
