// E6 — Theorem 3 / Corollary 1: Revocable LE complexity, both rows.
//
// Part 1 (faithful): paper parameters verbatim on tiny graphs — blind vs
// known-i(G); congest_rounds shows the bit-by-bit charging of Theorem 3's
// time analysis.
// Part 2 (scaled): same control flow, scaled phase lengths (documented
// substitution) across families and sizes: time-to-stable-leader,
// messages, revocations, and the blind/informed ratio whose shape is
// (n·i(G)/2)² per the two bounds.
#include "bench/common.h"

using namespace anole;
using namespace anole::bench;

namespace {

// Revocable-specific aggregates pulled from the detailed results.
struct rev_aggregates {
    sample_stats revocations, nodes_chose;
    std::uint64_t final_k = 0;
};

rev_aggregates aggregate(const scenario_result& res) {
    rev_aggregates a;
    for (const auto& run : res.runs) {
        if (!run.ok) continue;
        const auto& r = std::get<revocable_result>(run.detail);
        a.revocations.add(static_cast<double>(r.total_revocations));
        a.nodes_chose.add(static_cast<double>(r.nodes_chose));
        a.final_k = std::max(a.final_k, r.final_estimate);
    }
    return a;
}

}  // namespace

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(3);
    scenario_runner runner = opt.make_runner();

    {
        struct cfg {
            graph g;
            bool informed;
        };
        std::vector<cfg> cases;
        cases.push_back({make_cycle(4), false});
        cases.push_back({make_cycle(4), true});
        if (!opt.quick) {
            cases.push_back({make_complete(6), true});
            cases.push_back({make_path(4), true});
        }

        std::vector<scenario> batch;
        for (const auto& [g, informed] : cases) {
            revocable_cfg rc;
            rc.params = revocable_params::paper_faithful();
            rc.params.exact_potentials = false;  // approx values, charged bits
            rc.auto_isoperimetric = informed;    // profile i(G) is exact here
            rc.max_rounds = 120'000'000;
            batch.push_back(scenario{"", &g, rc, 1100, seeds});
        }
        const auto results = runner.run_batch(batch);

        text_table t({"graph", "mode", "ok", "rounds", "congest rounds",
                      "messages", "final k", "revocations"});
        for (std::size_t i = 0; i < cases.size(); ++i) {
            const auto& res = results[i];
            const auto agg = aggregate(res);
            t.add_row({cases[i].g.name(), cases[i].informed ? "i(G) known" : "blind",
                       res.success_ratio(), fmt_mean_sd(res.rounds()),
                       fmt_mean_sd(res.congest_rounds()), fmt_mean_sd(res.messages()),
                       std::to_string(agg.final_k),
                       fmt_fixed(agg.revocations.mean(), 1)});
        }
        emit(t, opt, "E6a: faithful paper parameters (tiny n)");
    }

    {
        struct row {
            graph_family family;
            std::size_t n;
        };
        std::vector<row> plan;
        if (opt.quick) {
            plan = {{graph_family::cycle, 8}, {graph_family::torus, 16}};
        } else {
            plan = {{graph_family::cycle, 8},      {graph_family::cycle, 16},
                    {graph_family::cycle, 32},     {graph_family::torus, 16},
                    {graph_family::torus, 36},     {graph_family::complete, 16},
                    {graph_family::random_regular, 32},
                    {graph_family::star, 16},      {graph_family::erdos_renyi, 32}};
        }

        std::vector<scenario> batch;
        for (const auto& [fam, n] : plan) {
            for (int informed = 0; informed < 2; ++informed) {
                revocable_cfg rc;
                rc.params = revocable_params::scaled(std::nullopt, 0.02, 0.12);
                // A scaled run that never certifies would climb the k
                // ladder forever (each estimate ~100x dearer): cap it so
                // failures are reported, not waited for.
                rc.params.k_cap = 64;
                rc.auto_isoperimetric = informed != 0;
                batch.push_back(
                    scenario{"", family_spec{fam, n, 3}, rc, 1200, seeds});
            }
        }
        const auto results = runner.run_batch(batch);

        text_table t({"family", "n", "mode", "ok", "rounds", "messages",
                      "revocations", "nodes chose"});
        std::size_t idx = 0;
        for (const auto& [fam, n] : plan) {
            (void)n;
            for (int informed = 0; informed < 2; ++informed) {
                const auto& res = results[idx++];
                const auto agg = aggregate(res);
                t.add_row({to_string(fam), std::to_string(res.profile.n),
                           informed ? "i(G)" : "blind", res.success_ratio(),
                           fmt_mean_sd(res.rounds()), fmt_mean_sd(res.messages()),
                           fmt_fixed(agg.revocations.mean(), 1),
                           fmt_fixed(agg.nodes_chose.mean(), 1)});
            }
        }
        emit(t, opt, "E6b: scaled policy across families (substituted lengths)");
    }

    std::printf("\nShape checks: informed <= blind in rounds and messages;"
                "\nmessages/round ~ 2m (every node broadcasts every round);"
                "\nrevocations > 0 then quiescence (success requires it).\n");
    return 0;
}
