// E3 — Theorem 1's time claim: rounds = O(tmix·log² n).
//
// Measures total protocol rounds vs the predictor tmix·log² n across
// families and sizes and fits rounds ≈ a·tmix·log² n through the origin;
// a stable constant a across rows = the claimed shape.
#include "bench/common.h"

#include <cmath>

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    scenario_runner runner = opt.make_runner();

    struct row {
        graph_family family;
        std::size_t n;
    };
    std::vector<row> plan;
    if (opt.quick) {
        plan = {{graph_family::random_regular, 128},
                {graph_family::torus, 100},
                {graph_family::cycle, 32}};
    } else {
        plan = {{graph_family::random_regular, 128},
                {graph_family::random_regular, 512},
                {graph_family::random_regular, 1024},
                {graph_family::hypercube, 256},
                {graph_family::hypercube, 1024},
                {graph_family::torus, 144},
                {graph_family::torus, 400},
                {graph_family::cycle, 48},
                {graph_family::cycle, 64},
                {graph_family::complete, 128}};
    }

    std::vector<scenario> batch;
    for (const auto& [fam, n] : plan) {
        batch.push_back(
            scenario{"", family_spec{fam, n, 1}, irrevocable_cfg{}, 700, 1});
    }
    const auto results = runner.run_batch(batch);

    text_table t({"family", "n", "tmix", "rounds", "tmix*log2(n)^2", "ratio"});
    std::vector<double> predictor, measured;

    for (std::size_t i = 0; i < plan.size(); ++i) {
        const auto& res = results[i];
        const auto& prof = res.profile;
        const auto tmix = std::max<std::uint64_t>(prof.mixing_time, 1);
        const std::uint64_t rounds = res.runs[0].rounds();
        const double logn = std::log2(static_cast<double>(prof.n));
        const double pred = static_cast<double>(tmix) * logn * logn;
        t.add_row({to_string(plan[i].family), std::to_string(prof.n),
                   std::to_string(prof.mixing_time),
                   fmt_count(rounds), fmt_count(static_cast<std::uint64_t>(pred)),
                   fmt_fixed(static_cast<double>(rounds) / pred, 2)});
        predictor.push_back(pred);
        measured.push_back(static_cast<double>(rounds));
    }

    emit(t, opt, "E3: rounds vs tmix*log^2(n) (Theorem 1 time)");
    if (predictor.size() >= 2) {
        std::printf("\nfit rounds ~ a * tmix*log2(n)^2: a = %.2f "
                    "(constant across rows = claimed shape; a ~ 4*c^2*cand_c)\n",
                    fit_through_origin(predictor, measured));
    }
    return 0;
}
