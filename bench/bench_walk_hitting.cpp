// E8 — Lemma 2: x = Θ̃(√(n·log n/(Φ·tmix))) walks suffice for the
// maximum-ID candidate to hit every territory whp.
//
// Sweeps the walk multiplier x_mult around 1.0 and reports the election
// success rate and the rate of "max candidate not heard by some
// candidate" failures. Claimed shape: a sharp transition — under-
// provisioned walks miss territories, the paper's x saturates success.
#include "bench/common.h"

#include "core/irrevocable.h"

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(8);
    profile_cache profiles;

    std::vector<graph> graphs;
    graphs.push_back(opt.quick ? make_torus(10, 10) : make_torus(16, 16));
    if (!opt.full && !opt.quick) graphs.push_back(make_random_regular(256, 4, 1));
    if (opt.full) {
        graphs.push_back(make_random_regular(512, 4, 1));
        graphs.push_back(make_hypercube(8));
    }

    text_table t({"graph", "regime", "x_mult", "x(walks)", "unique leader",
                  "multi leader", "no leader"});

    // Two regimes: the paper's own candidate density (overlapping
    // territories cover for missing walks at these scales — the bench's
    // first finding is the provisioning's safety margin), and a stressed
    // regime (sparse candidates, stunted walks) where territories are
    // disjoint and Lemma 2's transition becomes visible.
    struct regime {
        const char* name;
        double cand_c;
        double len_mult;
    };
    const std::vector<regime> regimes = {{"paper", 1.0, 1.0},
                                         {"stressed", 0.5, 0.05}};

    for (const graph& g : graphs) {
        const auto& prof = profiles.get(g);
        for (const auto& [rname, cand_c, len_mult] : regimes) {
            for (double mult : {0.05, 0.25, 1.0, 2.0}) {
                irrevocable_params p;
                p.n = prof.n;
                p.tmix = std::max<std::uint64_t>(prof.mixing_time, 1);
                p.phi = prof.conductance;
                p.x_mult = mult;
                p.cand_c = cand_c;
                p.walk_len_mult = len_mult;
                std::size_t unique = 0, multi = 0, none = 0;
                for (std::size_t s = 0; s < seeds; ++s) {
                    const auto r = run_irrevocable(g, p, 1500 + s);
                    if (r.num_leaders == 1) {
                        ++unique;
                    } else if (r.num_leaders > 1) {
                        ++multi;
                    } else {
                        ++none;
                    }
                }
                t.add_row({g.name(), rname, fmt_fixed(mult, 2),
                           std::to_string(p.x()),
                           std::to_string(unique) + "/" + std::to_string(seeds),
                           std::to_string(multi) + "/" + std::to_string(seeds),
                           std::to_string(none) + "/" + std::to_string(seeds)});
            }
        }
    }

    emit(t, opt, "E8: walk provisioning vs election outcome (Lemma 2)");
    std::printf("\nShape checks: in the paper regime even tiny x succeeds —"
                "\noverlapping territories plus the convergecast give a large"
                "\nsafety margin at these scales. In the stressed regime"
                "\n(sparse candidates, stunted walks, disjoint territories)"
                "\nmulti-leader failures appear at small x_mult and recede as"
                "\nx grows — Lemma 2's transition.\n");
    return 0;
}
