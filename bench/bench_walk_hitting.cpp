// E8 — Lemma 2: x = Θ̃(√(n·log n/(Φ·tmix))) walks suffice for the
// maximum-ID candidate to hit every territory whp.
//
// Sweeps the walk multiplier x_mult around 1.0 and reports the election
// success rate and the rate of "max candidate not heard by some
// candidate" failures. Claimed shape: a sharp transition — under-
// provisioned walks miss territories, the paper's x saturates success.
#include "bench/common.h"

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(8);
    scenario_runner runner = opt.make_runner();

    std::vector<graph> graphs;
    graphs.push_back(opt.quick ? make_torus(10, 10) : make_torus(16, 16));
    if (!opt.full && !opt.quick) graphs.push_back(make_random_regular(256, 4, 1));
    if (opt.full) {
        graphs.push_back(make_random_regular(512, 4, 1));
        graphs.push_back(make_hypercube(8));
    }

    // Two regimes: the paper's own candidate density (overlapping
    // territories cover for missing walks at these scales — the bench's
    // first finding is the provisioning's safety margin), and a stressed
    // regime (sparse candidates, stunted walks) where territories are
    // disjoint and Lemma 2's transition becomes visible.
    struct regime {
        const char* name;
        double cand_c;
        double len_mult;
    };
    const std::vector<regime> regimes = {{"paper", 1.0, 1.0},
                                         {"stressed", 0.5, 0.05}};
    const std::vector<double> mults = {0.05, 0.25, 1.0, 2.0};

    std::vector<scenario> batch;
    for (const graph& g : graphs) {
        for (const auto& r : regimes) {
            for (double mult : mults) {
                irrevocable_cfg cfg;
                cfg.params.x_mult = mult;
                cfg.params.cand_c = r.cand_c;
                cfg.params.walk_len_mult = r.len_mult;
                batch.push_back(scenario{"", &g, cfg, 1500, seeds});
            }
        }
    }
    const auto results = runner.run_batch(batch);

    text_table t({"graph", "regime", "x_mult", "x(walks)", "unique leader",
                  "multi leader", "no leader"});
    std::size_t idx = 0;
    for (const graph& g : graphs) {
        for (const auto& [rname, cand_c, len_mult] : regimes) {
            for (double mult : mults) {
                const auto& res = results[idx++];
                const auto oc = count_outcomes(res);
                // The provisioned walk count, from the same auto-filled
                // params the runs used.
                irrevocable_cfg cfg;
                cfg.params.x_mult = mult;
                cfg.params.cand_c = cand_c;
                cfg.params.walk_len_mult = len_mult;
                const auto p = scenario_runner::fill(cfg.params, res.profile);
                t.add_row({g.name(), rname, fmt_fixed(mult, 2),
                           std::to_string(p.x()),
                           std::to_string(oc.unique) + "/" + std::to_string(seeds),
                           std::to_string(oc.multi) + "/" + std::to_string(seeds),
                           std::to_string(oc.none) + "/" + std::to_string(seeds)});
            }
        }
    }

    emit(t, opt, "E8: walk provisioning vs election outcome (Lemma 2)");
    warn_errors(results);
    std::printf("\nShape checks: in the paper regime even tiny x succeeds —"
                "\noverlapping territories plus the convergecast give a large"
                "\nsafety margin at these scales. In the stressed regime"
                "\n(sparse candidates, stunted walks, disjoint territories)"
                "\nmulti-leader failures appear at small x_mult and recede as"
                "\nx grows — Lemma 2's transition.\n");
    return 0;
}
