// Campaign driver — the declarative sweep CLI over the topology zoo.
//
//   ./bench_campaign --families barbell,watts_strogatz,ba --sizes 64,256
//                    --variants revocable,cautious --seeds 8
//
// expands the cartesian sweep {families × sizes × variants × seeds} into
// single-repetition units, runs them through the ScenarioRunner (shared
// topology/profile caches across variants), streams one JSON record per
// unit to a JSONL file (default campaign.jsonl), and prints the
// aggregate per-cell table. Re-running with the same spec and output
// file skips every already-recorded unit — an interrupted campaign
// resumes where it died, and a completed one reports "0 executed".
//
// Flags beyond the sweep axes:
//   --spec FILE.json   load the docs/CAMPAIGNS.md JSON schema; sweep-axis
//                      flags override the file's values
//   --out FILE         JSONL record stream (default campaign.jsonl);
//                      --no-out disables persistence (and thus resume)
//   --profile-cache F  persistent profile cache (docs/PROFILES.md): a
//                      repeat campaign against a warm cache reports
//                      "profiles: 0 fresh" and skips all measurement
//   --base-seed N      first run seed (default 1)
//   --topology-seed N  instance seed for generated families (default 1)
//   --dry-run          print the expansion size and exit
//   --csv --json --jobs N   as in every other bench (see bench/common.h)
//
// Fleet modes (docs/FLEET.md) — many worker processes, one campaign:
//   --worker ID        run as a fleet worker: lease topology groups from
//                      <out>.fleet/, append records to a private shard
//   --lease-ttl N      seconds before a silent worker's lease is
//                      reclaimable (default 60)
//   --merge            fold <out> + every shard into the canonical
//                      ledger (byte-identical to a single-worker run)
//   --report FILE.html write the self-contained HTML report (sim/report.h)
//                      after running / merging
#include <algorithm>
#include <fstream>
#include <sstream>

#include "bench/common.h"
#include "sim/campaign.h"
#include "sim/fleet.h"
#include "sim/report.h"

using namespace anole;
using namespace anole::bench;

namespace {

[[noreturn]] void usage(int code) {
    std::printf(
        "usage: bench_campaign [--spec FILE.json]\n"
        "    [--families f1,f2,...] [--sizes n1,n2,...]\n"
        "    [--variants v1,v2,...] [--seeds N] [--dynamics d1,d2,...]\n"
        "    [--out FILE | --no-out] [--profile-cache FILE]\n"
        "    [--base-seed N] [--topology-seed N]\n"
        "    [--jobs N] [--csv] [--json] [--dry-run]\n"
        "    [--worker ID [--lease-ttl N] | --merge] [--report FILE.html]\n"
        "families: any graph_family name or alias (ws, ba, rgg, caveman,\n"
        "er, grid, tree); variants: flood_max|flood, gilbert, irrevocable,\n"
        "revocable, cautious_broadcast|cautious; dynamics: static, rewire,\n"
        "churn, loss, crash, sleep, storm, or 'all' (docs/DYNAMICS.md).\n");
    std::exit(code);
}

std::vector<std::string> split_csv(const std::string& s) {
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty()) out.push_back(item);
    }
    return out;
}

std::string need_value(int argc, char** argv, int& i) {
    if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", argv[i]);
        std::exit(2);
    }
    return argv[++i];
}

std::uint64_t parse_u64(const std::string& v, const char* flag) {
    // stoull would accept "-1" by wraparound; require plain digits.
    std::size_t pos = 0;
    unsigned long long parsed = 0;
    const bool digits = !v.empty() && v.find_first_not_of("0123456789") ==
                                          std::string::npos;
    try {
        if (digits) parsed = std::stoull(v, &pos);
    } catch (const std::exception&) {
        pos = 0;
    }
    if (!digits || pos != v.size()) {
        std::fprintf(stderr, "error: %s expects a non-negative number, got '%s'\n",
                     flag, v.c_str());
        std::exit(2);
    }
    return parsed;
}

}  // namespace

int main(int argc, char** argv) {
    campaign_spec spec;
    spec.output = "campaign.jsonl";
    spec.families.clear();
    spec.sizes.clear();
    spec.variants.clear();

    bool emit_csv = false, emit_json = false, dry_run = false, no_out = false;
    bool seeds_set = false, base_seed_set = false, topology_seed_set = false;
    bool worker_mode = false, merge_mode = false;
    std::size_t jobs = 0;
    std::uint64_t lease_ttl = 60;
    std::string out_flag, profile_cache_path, worker_id, report_path;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--spec") {
            const std::string path = need_value(argc, argv, i);
            std::ifstream in(path);
            if (!in) {
                std::fprintf(stderr, "error: cannot read spec '%s'\n", path.c_str());
                return 2;
            }
            std::stringstream buf;
            buf << in.rdbuf();
            try {
                const campaign_spec loaded = campaign_spec_from_json(buf.str());
                // Axis flags seen later override; start from the file.
                if (spec.families.empty()) spec.families = loaded.families;
                if (spec.sizes.empty()) spec.sizes = loaded.sizes;
                if (spec.variants.empty()) spec.variants = loaded.variants;
                if (spec.dynamics.empty()) spec.dynamics = loaded.dynamics;
                if (!seeds_set) spec.seeds = loaded.seeds;
                if (!base_seed_set) spec.base_seed = loaded.base_seed;
                if (!topology_seed_set) spec.topology_seed = loaded.topology_seed;
                if (!loaded.output.empty()) spec.output = loaded.output;
            } catch (const std::exception& e) {
                std::fprintf(stderr, "error: bad spec '%s': %s\n", path.c_str(),
                             e.what());
                return 2;
            }
        } else if (a == "--families") {
            spec.families.clear();
            for (const std::string& name : split_csv(need_value(argc, argv, i))) {
                const auto f = family_from_string(name);
                if (!f) {
                    std::fprintf(stderr, "error: unknown family '%s'\n", name.c_str());
                    return 2;
                }
                spec.families.push_back(*f);
            }
        } else if (a == "--sizes") {
            spec.sizes.clear();
            for (const std::string& v : split_csv(need_value(argc, argv, i))) {
                spec.sizes.push_back(static_cast<std::size_t>(parse_u64(v, "--sizes")));
            }
        } else if (a == "--variants") {
            spec.variants.clear();
            for (const std::string& name : split_csv(need_value(argc, argv, i))) {
                const auto k = variant_from_string(name);
                if (!k) {
                    std::fprintf(stderr, "error: unknown variant '%s'\n",
                                 name.c_str());
                    return 2;
                }
                spec.variants.push_back(*k);
            }
        } else if (a == "--dynamics") {
            spec.dynamics.clear();
            for (const std::string& name : split_csv(need_value(argc, argv, i))) {
                if (name == "all") {
                    spec.dynamics = all_dynamics_presets();
                    break;
                }
                const auto d = dynamics_preset(name);
                if (!d) {
                    std::fprintf(stderr, "error: unknown dynamics preset '%s'\n",
                                 name.c_str());
                    return 2;
                }
                spec.dynamics.emplace_back(name, *d);
            }
        } else if (a == "--seeds") {
            spec.seeds =
                static_cast<std::size_t>(parse_u64(need_value(argc, argv, i), "--seeds"));
            seeds_set = true;
        } else if (a == "--out") {
            out_flag = need_value(argc, argv, i);
        } else if (a == "--no-out") {
            no_out = true;
        } else if (a == "--profile-cache") {
            profile_cache_path = need_value(argc, argv, i);
        } else if (a == "--base-seed") {
            spec.base_seed = parse_u64(need_value(argc, argv, i), "--base-seed");
            base_seed_set = true;
        } else if (a == "--topology-seed") {
            spec.topology_seed =
                parse_u64(need_value(argc, argv, i), "--topology-seed");
            topology_seed_set = true;
        } else if (a == "--worker") {
            worker_mode = true;
            worker_id = need_value(argc, argv, i);
        } else if (a == "--lease-ttl") {
            lease_ttl = parse_u64(need_value(argc, argv, i), "--lease-ttl");
        } else if (a == "--merge") {
            merge_mode = true;
        } else if (a == "--report") {
            report_path = need_value(argc, argv, i);
        } else if (a == "--jobs") {
            jobs = static_cast<std::size_t>(parse_u64(need_value(argc, argv, i), "--jobs"));
        } else if (a == "--csv") {
            emit_csv = true;
        } else if (a == "--json") {
            emit_json = true;
        } else if (a == "--dry-run") {
            dry_run = true;
        } else if (a == "--help" || a == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "error: unknown flag '%s' (try --help)\n", a.c_str());
            return 2;
        }
    }

    // Demo sweep when no axes were given: the conductance extremes.
    if (spec.families.empty()) {
        spec.families = {graph_family::barbell, graph_family::watts_strogatz,
                         graph_family::barabasi_albert};
    }
    if (spec.sizes.empty()) spec.sizes = {64};
    if (spec.variants.empty()) {
        spec.variants = {algo_kind::flood_max, algo_kind::irrevocable};
    }
    if (!out_flag.empty()) spec.output = out_flag;
    if (no_out) spec.output.clear();

    try {
        spec.validate();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    const auto units = expand(spec);
    if (dry_run) {
        std::printf("campaign: %zu units (%zu families x %zu sizes x %zu variants "
                    "x %zu dynamics x %zu seeds)\n",
                    units.size(), spec.families.size(), spec.sizes.size(),
                    spec.variants.size(),
                    std::max<std::size_t>(spec.dynamics.size(), 1), spec.seeds);
        return 0;
    }

    if (worker_mode && merge_mode) {
        std::fprintf(stderr, "error: --worker and --merge are exclusive\n");
        return 2;
    }
    if ((worker_mode || merge_mode) && spec.output.empty()) {
        std::fprintf(stderr, "error: fleet modes need a ledger (--out, not "
                             "--no-out)\n");
        return 2;
    }

    if (merge_mode) {
        try {
            const merge_report mr = merge_fleet(spec);
            std::printf("merge: %zu shards, %zu records, covering %zu/%zu units "
                        "(%zu duplicates, %zu foreign)\n",
                        mr.shards, mr.records, mr.covered, mr.total_units,
                        mr.duplicates, mr.foreign);
            const auto records = load_campaign_ledger(spec.output);
            options opt;
            opt.csv = emit_csv;
            opt.json = emit_json;
            emit(campaign_table(records), opt, "CAMPAIGN: aggregate by cell");
            if (!report_path.empty()) {
                report_options ro;
                ro.expected_units = mr.total_units;
                ro.jobs = jobs;
                write_campaign_report(report_path, records, ro);
                std::printf("report: %s\n", report_path.c_str());
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
        return 0;
    }

    if (worker_mode) {
        scenario_runner wrunner(jobs);
        if (!profile_cache_path.empty()) {
            wrunner.set_profile_cache(profile_cache_path);
        }
        fleet_options fopt;
        fopt.worker_id = worker_id;
        fopt.lease_ttl = lease_ttl;
        try {
            const fleet_report fr = run_fleet_worker(spec, wrunner, fopt);
            std::printf("worker %s: %zu groups claimed (%zu reclaimed), "
                        "%zu executed, %zu skipped, %zu failed, %zu left "
                        "leased; shard %s\n",
                        fr.worker_id.c_str(), fr.groups_claimed,
                        fr.leases_reclaimed, fr.executed, fr.skipped, fr.failed,
                        fr.left_leased, fr.shard.c_str());
            std::printf("profiles: %zu fresh\n", wrunner.fresh_profiles());
            return fr.failed == 0 ? 0 : 1;
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    }

    scenario_runner runner(jobs);
    if (!profile_cache_path.empty()) runner.set_profile_cache(profile_cache_path);
    campaign_report report;
    try {
        report = run_campaign(spec, runner);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    options opt;  // reuse the shared table emitter for --csv/--json
    opt.csv = emit_csv;
    opt.json = emit_json;
    emit(campaign_table(report.records), opt, "CAMPAIGN: aggregate by cell");

    std::printf("\ncampaign: %zu executed, %zu skipped (already recorded), "
                "%zu failed; %zu/%zu units recorded%s%s\n",
                report.executed, report.skipped, report.failed,
                report.records.size(), units.size(),
                spec.output.empty() ? "" : " in ",
                spec.output.c_str());
    if (profile_cache_path.empty()) {
        std::printf("profiles: %zu fresh\n", runner.fresh_profiles());
    } else {
        std::printf("profiles: %zu fresh (cache: %s)\n", runner.fresh_profiles(),
                    profile_cache_path.c_str());
    }
    if (!report_path.empty()) {
        try {
            report_options ro;
            ro.expected_units = units.size();
            ro.jobs = jobs;
            write_campaign_report(report_path, report.records, ro);
            std::printf("report: %s\n", report_path.c_str());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    }
    return report.failed == 0 ? 0 : 1;
}
