// E7 — Lemma 1: cautious broadcast costs Õ(x·tmix) messages, informs
// Ω̃(x·tmix·Φ) nodes, in O(tmix·log n) time.
//
// Single-source runs with the cap swept over x (the walk-count parameter
// that sets cap = x·tmix·Φ). Reported per x: territory size vs the cap
// (the Ω̃(x·tmix·Φ) claim), messages vs territory (the Õ(...) claim:
// messages/territory should stay polylog-flat), against a naive flood.
#include "bench/common.h"

using namespace anole;
using namespace anole::bench;

namespace {

sample_stats territories(const scenario_result& res) {
    sample_stats s;
    for (const auto& run : res.runs) {
        if (run.ok) {
            s.add(static_cast<double>(std::get<cb_result>(run.detail).territory));
        }
    }
    return s;
}

}  // namespace

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(3);
    scenario_runner runner = opt.make_runner();

    graph g = opt.quick ? make_torus(12, 12) : make_torus(24, 24);
    const auto& prof = runner.profile_for(g);
    const double tphi = static_cast<double>(prof.mixing_time) * prof.conductance;

    const std::vector<std::uint64_t> xs = {1, 2, 4, 8, 16, 32};
    std::vector<scenario> batch;
    for (std::uint64_t x : xs) {
        cautious_cfg cfg;
        cfg.cap_x = static_cast<double>(x);  // cap = max(2, ⌈x·tmix·Φ⌉)
        batch.push_back(scenario{"", &g, cfg, 1300, seeds});
    }
    const auto results = runner.run_batch(batch);

    text_table t({"x", "cap=x*tmix*phi", "territory", "terr/cap", "messages",
                  "msgs/territory"});
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const auto cap = std::max<std::uint64_t>(
            2, static_cast<std::uint64_t>(static_cast<double>(xs[i]) * tphi));
        const sample_stats terr = territories(results[i]);
        const sample_stats msgs = results[i].messages();
        t.add_row({std::to_string(xs[i]), std::to_string(cap),
                   fmt_fixed(terr.mean(), 1),
                   fmt_fixed(terr.mean() / static_cast<double>(cap), 2),
                   fmt_mean_sd(msgs),
                   fmt_fixed(msgs.mean() / std::max(terr.mean(), 1.0), 1)});
    }
    emit(t, opt, "E7: cautious broadcast on " + g.name() +
                     " (tmix=" + std::to_string(prof.mixing_time) +
                     ", phi=" + fmt_fixed(prof.conductance, 4) + ")");

    // Naive flood comparator: reaches everyone, costs Θ(m) at least.
    cautious_cfg naive;
    naive.config.throttle = false;
    naive.config.extend_all = true;
    const auto nf = runner.run(scenario{"", &g, naive, 1400, 1});
    if (!nf.runs[0].ok) {
        std::fprintf(stderr, "naive flood run failed: %s\n",
                     nf.runs[0].error.c_str());
        return 1;
    }
    const auto& nfr = std::get<cb_result>(nf.runs[0].detail);
    std::printf("\nnaive flood: territory=%zu (all %zu), messages=%llu"
                " (>= m = %zu)\n",
                nfr.territory, g.num_nodes(),
                static_cast<unsigned long long>(nfr.totals.messages),
                g.num_edges());
    std::printf("Shape checks: territory tracks cap (terr/cap ~ 1); "
                "msgs/territory stays polylog-flat as x grows (Lemma 1).\n");
    return 0;
}
