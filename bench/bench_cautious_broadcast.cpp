// E7 — Lemma 1: cautious broadcast costs Õ(x·tmix) messages, informs
// Ω̃(x·tmix·Φ) nodes, in O(tmix·log n) time.
//
// Single-source runs with the cap swept over x (the walk-count parameter
// that sets cap = x·tmix·Φ). Reported per x: territory size vs the cap
// (the Ω̃(x·tmix·Φ) claim), messages vs territory (the Õ(...) claim:
// messages/territory should stay polylog-flat), against a naive flood.
#include "bench/common.h"

#include <cmath>

#include "core/cautious_broadcast.h"

using namespace anole;
using namespace anole::bench;

namespace {

struct cb_outcome {
    std::size_t territory = 0;
    std::uint64_t messages = 0;
};

cb_outcome run_once(const graph& g, cb_config cfg, std::uint64_t rounds,
                    std::uint64_t seed) {
    engine<cautious_broadcast_node> eng(g, seed, congest_budget::strict_log(16));
    eng.spawn([&](std::size_t u) {
        return cautious_broadcast_node(g.degree(static_cast<node_id>(u)), u == 0,
                                       4242, cfg, rounds);
    });
    eng.run_until_halted(rounds + 2);
    cb_outcome out;
    out.messages = eng.metrics().total().messages;
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        if (eng.node(u).exec().in_tree()) ++out.territory;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t seeds = opt.seeds_or(3);
    profile_cache profiles;

    graph g = opt.quick ? make_torus(12, 12) : make_torus(24, 24);
    const auto& prof = profiles.get(g);
    const double tphi = static_cast<double>(prof.mixing_time) * prof.conductance;
    const auto rounds = static_cast<std::uint64_t>(
        static_cast<double>(prof.mixing_time) *
        std::log2(static_cast<double>(prof.n)));

    text_table t({"x", "cap=x*tmix*phi", "territory", "terr/cap", "messages",
                  "msgs/territory"});
    for (std::uint64_t x : {1u, 2u, 4u, 8u, 16u, 32u}) {
        cb_config cfg;
        cfg.cap = std::max<std::uint64_t>(
            2, static_cast<std::uint64_t>(static_cast<double>(x) * tphi));
        sample_stats terr, msgs;
        for (std::size_t s = 0; s < seeds; ++s) {
            const auto r = run_once(g, cfg, rounds, 1300 + s);
            terr.add(static_cast<double>(r.territory));
            msgs.add(static_cast<double>(r.messages));
        }
        t.add_row({std::to_string(x), std::to_string(cfg.cap),
                   fmt_fixed(terr.mean(), 1),
                   fmt_fixed(terr.mean() / static_cast<double>(cfg.cap), 2),
                   fmt_mean_sd(msgs),
                   fmt_fixed(msgs.mean() / std::max(terr.mean(), 1.0), 1)});
    }
    emit(t, opt, "E7: cautious broadcast on " + g.name() +
                     " (tmix=" + std::to_string(prof.mixing_time) +
                     ", phi=" + fmt_fixed(prof.conductance, 4) + ")");

    // Naive flood comparator: reaches everyone, costs Θ(m) at least.
    cb_config naive;
    naive.throttle = false;
    naive.extend_all = true;
    const auto nf = run_once(g, naive, rounds, 1400);
    std::printf("\nnaive flood: territory=%zu (all %zu), messages=%llu"
                " (>= m = %zu)\n",
                nf.territory, g.num_nodes(),
                static_cast<unsigned long long>(nf.messages), g.num_edges());
    std::printf("Shape checks: territory tracks cap (terr/cap ~ 1); "
                "msgs/territory stays polylog-flat as x grows (Lemma 1).\n");
    return 0;
}
