// E5 — Theorem 2 and Figures 1-2, executed.
//
// For each n: find a winning execution Γ of a stop-by-T(n) LE algorithm
// on C_n, lay out W witnesses on C_N per Figure 1, replicate Γ's tapes,
// run the SAME algorithm for T(n) rounds, and verify (a) the Figure 2
// invariant node-by-node on every core, (b) >= 2 leaders per witness
// core, (c) that every node of C_N stopped convinced the election was
// done. Also prints Theorem 2's bound on how large N must be for this to
// happen *spontaneously* under fresh randomness — the astronomical number
// explains why the theorem is existence-style and the demo seeds tapes.
#include "bench/common.h"

#include "impossibility/pumping_wheel.h"

using namespace anole;
using namespace anole::bench;

int main(int argc, char** argv) {
    const options opt = options::parse(argc, argv);
    const std::size_t trials = opt.seeds_or(5);

    std::vector<std::size_t> ns = opt.quick
                                      ? std::vector<std::size_t>{8, 16}
                                      : std::vector<std::size_t>{8, 16, 32, 64};
    std::vector<std::size_t> witness_counts = {1, 4, 16};

    text_table t({"n", "T(n)", "witnesses", "N", "trials", "2-leader cores",
                  "invariant", "leaders total", "stopped", "log2 N(spont.)"});

    for (std::size_t n : ns) {
        cycle_le_algo algo(n);
        for (std::size_t w : witness_counts) {
            std::size_t cores_ok = 0, invariant_ok = 0, leaders = 0, stopped = 0;
            std::size_t big_n = 0;
            for (std::size_t trial = 0; trial < trials; ++trial) {
                const auto win = find_winning_execution(algo, 40 + trial);
                const auto res = run_pumped(algo, win, w, 90 + trial);
                big_n = res.layout.big_n;
                cores_ok += res.witnesses_with_two == w ? 1 : 0;
                invariant_ok += res.invariant_held ? 1 : 0;
                leaders += res.leaders_total;
                stopped += res.stopped_total;
            }
            t.add_row({std::to_string(n), std::to_string(algo.stop_time()),
                       std::to_string(w), std::to_string(big_n),
                       std::to_string(trials),
                       std::to_string(cores_ok) + "/" + std::to_string(trials),
                       std::to_string(invariant_ok) + "/" + std::to_string(trials),
                       std::to_string(leaders / trials),
                       std::to_string(stopped / trials) + "/" + std::to_string(big_n),
                       fmt_fixed(required_cycle_size_log2(algo, 0.5), 0)});
        }
    }

    emit(t, opt, "E5: pumping wheel (Theorem 2, Figures 1-2)");
    std::printf(
        "\nReading: every witness core elects two leaders although the"
        "\nalgorithm 'solved' LE on C_n — it cannot tell C_N apart within"
        "\nT(n) rounds. 'log2 N(spont.)' is Theorem 2's size for the same"
        "\nevent under fresh randomness (probability > 1/2): ~2^280+ nodes"
        "\neven for n=8, hence no algorithm without n can both stop and be"
        "\ncorrect with constant probability.\n");
    return 0;
}
