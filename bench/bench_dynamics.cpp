// Dynamics degradation bench — how the five algorithms hold up when the
// network stops being static (sim/dynamics.h; docs/DYNAMICS.md).
//
//   ./bench_dynamics                 # cycle/dumbbell/torus x presets
//   ./bench_dynamics --full          # adds the slow-mixing corners
//   ./bench_dynamics --dynamics churn,storm --seeds 8
//
// Each table row is one (topology, algorithm, dynamics model) cell:
// election rate, verdict split (unique / multi / none / error — a run
// that exhausts its round or budget cap counts as a bounded failure,
// never a hang), rounds and messages. The "static" preset is always
// swept first as the baseline the degradation is read against.
#include <sstream>

#include "bench/common.h"
#include "sim/campaign.h"
#include "sim/dynamics.h"

using namespace anole;
using namespace anole::bench;

namespace {

std::vector<std::pair<std::string, dynamics_spec>> pick_dynamics(int argc,
                                                                 char** argv) {
    // One extra flag on top of the shared options: --dynamics d1,d2,...
    // (parsed before options::parse sees the argv copy below).
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--dynamics" && i + 1 < argc) {
            std::vector<std::pair<std::string, dynamics_spec>> out;
            std::stringstream ss(argv[i + 1]);
            std::string name;
            while (std::getline(ss, name, ',')) {
                if (name.empty()) continue;
                if (name == "all") return all_dynamics_presets();
                const auto d = dynamics_preset(name);
                if (!d) {
                    std::fprintf(stderr, "error: unknown dynamics preset '%s'\n",
                                 name.c_str());
                    std::exit(2);
                }
                out.emplace_back(name, *d);
            }
            return out;
        }
    }
    return all_dynamics_presets();
}

// Strips --dynamics VALUE so options::parse doesn't reject it.
std::vector<char*> strip_dynamics_flag(int argc, char** argv) {
    std::vector<char*> out;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--dynamics") {
            ++i;  // skip the value too
            continue;
        }
        out.push_back(argv[i]);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const auto dynamics = pick_dynamics(argc, argv);
    std::vector<char*> args = strip_dynamics_flag(argc, argv);
    const options opt = options::parse(static_cast<int>(args.size()), args.data());

    const std::size_t n = opt.quick ? 32 : 64;
    const std::size_t seeds = opt.seeds_or(opt.quick ? 2 : 4);

    std::vector<family_spec> topologies = {
        {graph_family::cycle, n, 1},
        {graph_family::dumbbell, n, 1},
        {graph_family::torus, n, 1},
    };
    if (opt.full) {
        topologies.push_back({graph_family::barbell, n, 1});
        topologies.push_back({graph_family::connected_caveman, n, 1});
    }

    // The campaign's bounded default configs: hopeless cells (e.g.
    // revocable on a crashed network) fail in bounded time, never stall.
    // Revocable's campaign cap (up to 2M rounds per hopeless cell) is
    // pulled in much further here: under adversarial presets most of its
    // cells ARE hopeless, and this bench reads the verdict split, not
    // how long the round ladder ground on before giving up.
    algo_config revocable = campaign_default_config(algo_kind::revocable, n);
    std::get<revocable_cfg>(revocable).max_rounds = opt.quick ? 5'000 : 25'000;
    const std::vector<std::pair<std::string, algo_config>> algos = {
        {"flood_max", campaign_default_config(algo_kind::flood_max, n)},
        {"gilbert", campaign_default_config(algo_kind::gilbert, n)},
        {"irrevocable", campaign_default_config(algo_kind::irrevocable, n)},
        {"revocable", std::move(revocable)},
        {"cautious", campaign_default_config(algo_kind::cautious_broadcast, n)},
    };

    scenario_runner runner = opt.make_runner();

    std::vector<scenario> batch;
    for (const auto& topo : topologies) {
        for (const auto& [aname, cfg] : algos) {
            for (const auto& [dname, dspec] : dynamics) {
                scenario s;
                s.label = std::string(to_string(topo.family)) + "/" + aname + "@" +
                          dname;
                s.topology = topo;
                s.algo = cfg;
                s.seed = 2100;
                s.repetitions = seeds;
                s.dynamics = dspec;
                batch.push_back(std::move(s));
            }
        }
    }

    const std::vector<scenario_result> results = runner.run_batch(batch);

    text_table t({"cell", "elected", "multi", "none", "error", "rounds",
                  "messages"});
    for (const auto& res : results) {
        const outcome_counts c = count_outcomes(res);
        t.add_row({res.label,
                   std::to_string(c.unique) + "/" + std::to_string(res.runs.size()),
                   std::to_string(c.multi), std::to_string(c.none),
                   std::to_string(c.errors), fmt_mean_sd(res.rounds()),
                   fmt_mean_sd(res.messages())});
    }
    emit(t, opt, "DYNAMICS: verdicts under per-round adversaries");
    warn_errors(results);

    // --- adaptive vs oblivious: does *aiming* the same fault budget hurt
    // more? The leader_assassin crashes exactly the standing leader; the
    // i.i.d. crash preset kills uniformly at random. Revocable is the one
    // algorithm that can re-elect after losing a leader, so its cells
    // carry a "recovered" column: runs where the oracle saw a crashed
    // leader AND a live one at exit (assassination absorbed, new epoch
    // won). Flood rides along as the no-recovery contrast row.
    dynamics_spec assassin = *dynamics_preset("assassin");
    const std::vector<std::pair<std::string, dynamics_spec>> duel = {
        {"static", dynamics_spec{}},
        {"crash", *dynamics_preset("crash")},  // oblivious i.i.d.
        {"assassin", std::move(assassin)},     // adaptive, same budget class
    };
    const std::vector<std::pair<std::string, algo_config>> duel_algos = {
        {"flood_max", campaign_default_config(algo_kind::flood_max, n)},
        {"revocable", algos[3].second},
    };
    std::vector<scenario> duel_batch;
    for (const auto& topo : topologies) {
        for (const auto& [aname, cfg] : duel_algos) {
            for (const auto& [dname, dspec] : duel) {
                scenario s;
                s.label = std::string(to_string(topo.family)) + "/" + aname + "@" +
                          dname;
                s.topology = topo;
                s.algo = cfg;
                s.seed = 4700;
                s.repetitions = seeds;
                s.dynamics = dspec;
                duel_batch.push_back(std::move(s));
            }
        }
    }
    const std::vector<scenario_result> duels = runner.run_batch(duel_batch);

    text_table duel_t({"cell", "elected", "leader_killed", "recovered", "safe",
                       "rounds", "messages"});
    for (const auto& res : duels) {
        const outcome_counts c = count_outcomes(res);
        std::size_t killed = 0, recovered = 0, safe = 0;
        for (const auto& run : res.runs) {
            if (!run.ok) continue;
            const oracle_report orc = run.oracle();
            if (orc.pass()) ++safe;
            if (orc.crashed_leaders > 0) {
                ++killed;
                if (orc.live_leaders >= 1) ++recovered;
            }
        }
        duel_t.add_row({res.label,
                        std::to_string(c.unique) + "/" +
                            std::to_string(res.runs.size()),
                        std::to_string(killed), std::to_string(recovered),
                        std::to_string(safe), fmt_mean_sd(res.rounds()),
                        fmt_mean_sd(res.messages())});
    }
    emit(duel_t, opt, "DYNAMICS: adaptive (assassin) vs oblivious (crash)");
    warn_errors(duels);
    return 0;
}
