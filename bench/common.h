// anole bench — shared harness helpers.
//
// Every bench binary is standalone: `./bench_x` runs the experiment with
// defaults and prints paper-style tables; flags:
//   --quick      smaller sweep (CI)
//   --full       larger sweep (takes minutes)
//   --csv        append machine-readable CSV after each table
//   --json       append one JSON object per table (the BENCH_*.json
//                trajectory schema; see docs/BENCHMARKS.md)
//   --seeds N    repetitions per configuration (default 3-5 per bench)
//   --jobs N     worker threads for the scenario sweep (default: all cores)
//   --node-jobs N  shard every engine round across N workers (default 1 =
//                serial rounds; results identical for any value — see
//                docs/PERFORMANCE.md for when this beats --jobs)
//
// Results are deterministic in the seed set — the ScenarioRunner
// (src/sim/runner.h) derives every repetition's randomness from
// scenario.seed + r, so --jobs only changes wall-clock time, never
// numbers. EXPERIMENTS.md records the default-mode outputs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/spectral.h"
#include "sim/runner.h"
#include "util/stats.h"
#include "util/table.h"

namespace anole::bench {

struct options {
    bool quick = false;
    bool full = false;
    bool csv = false;
    bool json = false;
    std::size_t seeds = 0;      // 0 = bench default
    std::size_t jobs = 0;       // 0 = hardware concurrency
    std::size_t node_jobs = 0;  // 0 = serial engine rounds

    static options parse(int argc, char** argv) {
        const auto parse_count = [&](int& i, const char* flag) -> std::size_t {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s requires a value\n", flag);
                std::exit(2);
            }
            const std::string v = argv[++i];
            std::size_t pos = 0;
            unsigned long parsed = 0;
            try {
                parsed = std::stoul(v, &pos);
            } catch (const std::exception&) {
                pos = 0;
            }
            if (pos != v.size()) {
                std::fprintf(stderr, "error: %s expects a number, got '%s'\n",
                             flag, v.c_str());
                std::exit(2);
            }
            return static_cast<std::size_t>(parsed);
        };
        options o;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--quick") {
                o.quick = true;
            } else if (a == "--full") {
                o.full = true;
            } else if (a == "--csv") {
                o.csv = true;
            } else if (a == "--json") {
                o.json = true;
            } else if (a == "--seeds") {
                o.seeds = parse_count(i, "--seeds");
            } else if (a == "--jobs") {
                o.jobs = parse_count(i, "--jobs");
            } else if (a == "--node-jobs") {
                o.node_jobs = parse_count(i, "--node-jobs");
            } else if (a == "--help" || a == "-h") {
                std::printf("flags: --quick | --full | --csv | --json |"
                            " --seeds N | --jobs N | --node-jobs N\n");
                std::exit(0);
            } else {
                std::fprintf(stderr, "error: unknown flag '%s' (try --help)\n",
                             a.c_str());
                std::exit(2);
            }
        }
        return o;
    }

    [[nodiscard]] std::size_t seeds_or(std::size_t dflt) const {
        return seeds == 0 ? dflt : seeds;
    }

    // The shared experiment driver, sized from --jobs; --node-jobs
    // becomes the default engine-round sharding for every scenario.
    [[nodiscard]] scenario_runner make_runner() const {
        return scenario_runner(jobs, node_jobs);
    }
};

inline void emit(const text_table& t, const options& opt, const std::string& title) {
    std::cout << "\n== " << title << " ==\n";
    t.print(std::cout);
    if (opt.csv) {
        std::cout << "-- csv --\n";
        t.print_csv(std::cout);
    }
    if (opt.json) {
        std::cout << "-- json --\n";
        t.print_json(std::cout, title);
    }
    std::cout.flush();
}

// Election-outcome buckets over a scenario's repetitions. Errored runs
// (run.ok == false) are counted separately — never as "no leader".
struct outcome_counts {
    std::size_t unique = 0, multi = 0, none = 0, errors = 0;
    std::string first_error;
};

inline outcome_counts count_outcomes(const scenario_result& res) {
    outcome_counts c;
    for (const auto& run : res.runs) {
        if (!run.ok) {
            if (c.errors == 0) c.first_error = run.error;
            ++c.errors;
        } else if (run.num_leaders() == 1) {
            ++c.unique;
        } else if (run.num_leaders() > 1) {
            ++c.multi;
        } else {
            ++c.none;
        }
    }
    return c;
}

// Prints a post-table warning when any repetition errored out.
inline void warn_errors(const std::vector<scenario_result>& results) {
    std::size_t errors = 0;
    std::string first;
    for (const auto& res : results) {
        const auto c = count_outcomes(res);
        if (errors == 0 && c.errors > 0) first = res.label + ": " + c.first_error;
        errors += c.errors;
    }
    if (errors > 0) {
        std::fprintf(stderr,
                     "warning: %zu repetition(s) errored and are excluded "
                     "from the outcome columns (first: %s)\n",
                     errors, first.c_str());
    }
}

inline std::string fmt_mean_sd(const sample_stats& s) {
    if (s.count() == 0) return "-";  // every run in the cell errored
    if (s.count() < 2) return fmt_count(static_cast<std::uint64_t>(s.mean()));
    return fmt_count(static_cast<std::uint64_t>(s.mean())) + " ±" +
           fmt_count(static_cast<std::uint64_t>(s.stddev()));
}

}  // namespace anole::bench
