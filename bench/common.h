// anole bench — shared harness helpers.
//
// Every bench binary is standalone: `./bench_x` runs the experiment with
// defaults and prints paper-style tables; flags:
//   --quick      smaller sweep (CI)
//   --full       larger sweep (takes minutes)
//   --csv        append machine-readable CSV after each table
//   --seeds N    repetitions per configuration (default 3-5 per bench)
//
// Results are deterministic in the seed set. EXPERIMENTS.md records the
// default-mode outputs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/spectral.h"
#include "util/stats.h"
#include "util/table.h"

namespace anole::bench {

struct options {
    bool quick = false;
    bool full = false;
    bool csv = false;
    std::size_t seeds = 0;  // 0 = bench default

    static options parse(int argc, char** argv) {
        options o;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--quick") {
                o.quick = true;
            } else if (a == "--full") {
                o.full = true;
            } else if (a == "--csv") {
                o.csv = true;
            } else if (a == "--seeds" && i + 1 < argc) {
                o.seeds = static_cast<std::size_t>(std::stoul(argv[++i]));
            } else if (a == "--help" || a == "-h") {
                std::printf(
                    "flags: --quick | --full | --csv | --seeds N\n");
                std::exit(0);
            }
        }
        return o;
    }

    [[nodiscard]] std::size_t seeds_or(std::size_t dflt) const {
        return seeds == 0 ? dflt : seeds;
    }
};

// Profiles are expensive (spectral + mixing simulation); cache per graph
// name within a binary run.
class profile_cache {
public:
    const graph_profile& get(const graph& g) {
        auto it = cache_.find(g.name());
        if (it == cache_.end()) {
            it = cache_.emplace(g.name(), profile(g, 1)).first;
        }
        return it->second;
    }

private:
    std::map<std::string, graph_profile> cache_;
};

inline void emit(const text_table& t, const options& opt, const std::string& title) {
    std::cout << "\n== " << title << " ==\n";
    t.print(std::cout);
    if (opt.csv) {
        std::cout << "-- csv --\n";
        t.print_csv(std::cout);
    }
    std::cout.flush();
}

inline std::string fmt_mean_sd(const sample_stats& s) {
    if (s.count() < 2) return fmt_count(static_cast<std::uint64_t>(s.mean()));
    return fmt_count(static_cast<std::uint64_t>(s.mean())) + " ±" +
           fmt_count(static_cast<std::uint64_t>(s.stddev()));
}

}  // namespace anole::bench
