// Engine microbenchmark + perf-regression gate.
//
// Measures the two hot paths this repo's every experiment bottoms out in
// and compares them against their pre-flat-slot predecessors, which are
// replicated here so the before/after is measured, not recalled:
//
//   1. round dispatch — flat single-writer slot transport vs the legacy
//      vector-inbox engine (per-node vector<pair> inboxes cleared every
//      round, per-sender stamp array, per-send metrics map lookup);
//   2. walk ensembles — O(degree) binomial/multinomial rounds vs the
//      per-token coin-flip loop (run on the same flat engine, so the
//      sampling change is isolated);
//   3. parallel identity — sharded rounds must be bitwise-identical to
//      serial on every topology family in the zoo.
//
// Output follows the BENCH_*.json trajectory schema (docs/BENCHMARKS.md);
// the committed baseline lives at BENCH_ENGINE.json in the repo root and
// CI regenerates + gates against it (see --check below).
//
// Flags:
//   --quick          tiny sizes (smoke only; numbers not baseline-comparable)
//   --csv / --json   machine-readable output after each table
//   --json-out FILE  write the JSON objects (one per line) to FILE
//   --check FILE     compare against a baseline produced by --json-out:
//                    the machine-independent speedup columns may not
//                    fall below baseline/3 (a generous hard-regression
//                    gate — both sides of each ratio run on the same
//                    host, so runner speed cancels), and the identity
//                    column must stay "yes". Exits 1 on regression.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/random_walk.h"
#include "graph/generators.h"
#include "sim/engine.h"
#include "util/json.h"
#include "util/table.h"

namespace anole {
namespace {

// --- the round-dispatch workload ---------------------------------------------

struct micro_msg {
    std::uint8_t x = 0;
    [[nodiscard]] std::size_t bit_size() const noexcept { return 8; }
};

// One message per port per round: the delivery-dominated regime where
// transport cost is everything.
class all_ports_proc {
public:
    using message_type = micro_msg;
    explicit all_ports_proc(std::size_t degree) : degree_(degree) {}
    void on_round(node_ctx<micro_msg>& ctx, inbox_view<micro_msg> inbox) {
        for (const auto& [port, msg] : inbox) acc_ += msg.x + port;
        for (port_id p = 0; p < degree_; ++p) ctx.send(p, micro_msg{});
    }
    std::uint64_t acc_ = 0;

private:
    std::size_t degree_;
};

// --- legacy engine replica ---------------------------------------------------
//
// The pre-flat-slot hot path, replicated faithfully from the seed
// engine: per-node vector<pair> inboxes cleared n-at-a-time every round,
// a per-sender stamp array for the double-send check, the per-send
// fragmentation division, a sim_metrics::count_message call (phase-map
// lookup) on every send, and — as in the original — every send funnelled
// through a type-erased trampoline (function pointer), so none of it can
// inline into the protocol.

class legacy_engine {
public:
    struct legacy_ctx {
        using send_hook = void (*)(void*, port_id, micro_msg&&);
        std::size_t degree = 0;
        send_hook fn = nullptr;
        void* env = nullptr;
        void send(port_id p, micro_msg m) {
            if (p >= degree) {
                std::fprintf(stderr, "legacy replica: port out of range\n");
                std::exit(2);
            }
            fn(env, p, std::move(m));
        }
    };

    legacy_engine(const graph& g, std::uint64_t seed)
        : g_(g), budget_bits_(congest_budget{}.resolve(g.num_nodes())) {
        const std::size_t n = g_.num_nodes();
        slot_base_.resize(n + 1, 0);
        for (node_id u = 0; u < n; ++u) slot_base_[u + 1] = slot_base_[u] + g_.degree(u);
        sent_stamp_.assign(slot_base_[n], 0);
        cur_in_.resize(n);
        nxt_in_.resize(n);
        acc_.assign(n, 0);
        (void)seed;
    }

    void step() {
        const std::size_t n = g_.num_nodes();
        for (node_id u = 0; u < n; ++u) {
            for (const auto& [port, msg] : cur_in_[u]) acc_[u] += msg.x + port;
            send_env env{this, u};
            legacy_ctx ctx{g_.degree(u), &legacy_engine::trampoline, &env};
            const auto deg = static_cast<port_id>(ctx.degree);
            for (port_id p = 0; p < deg; ++p) ctx.send(p, micro_msg{});
        }
        for (node_id u = 0; u < n; ++u) cur_in_[u].clear();
        std::swap(cur_in_, nxt_in_);
        metrics_.count_round(1);
        ++round_;
    }

    void run_rounds(std::uint64_t k) {
        for (std::uint64_t i = 0; i < k; ++i) step();
    }

    [[nodiscard]] const sim_metrics& metrics() const noexcept { return metrics_; }

private:
    struct send_env {
        legacy_engine* self;
        node_id sender;
    };

    static void trampoline(void* env_ptr, port_id p, micro_msg&& m) {
        auto* env = static_cast<send_env*>(env_ptr);
        env->self->do_send(env->sender, p, std::move(m));
    }

    void do_send(node_id u, port_id p, micro_msg&& m) {
        auto& stamp = sent_stamp_[slot_base_[u] + p];
        if (stamp == round_ + 1) {
            std::fprintf(stderr, "legacy replica: double send\n");
            std::exit(2);
        }
        stamp = round_ + 1;
        const std::size_t bits = m.bit_size();
        const std::uint64_t frag =
            bits == 0 ? 1 : (bits + budget_bits_ - 1) / budget_bits_;
        if (frag > round_max_frag_) round_max_frag_ = frag;
        metrics_.count_message(bits);
        const node_id v = g_.neighbor(u, p);
        const port_id q = g_.reverse_port(u, p);
        nxt_in_[v].emplace_back(q, std::move(m));
    }

    const graph& g_;
    std::uint64_t budget_bits_;
    std::vector<std::size_t> slot_base_;
    std::vector<std::uint64_t> sent_stamp_;
    std::vector<std::vector<std::pair<port_id, micro_msg>>> cur_in_, nxt_in_;
    std::vector<std::uint64_t> acc_;
    std::uint64_t round_ = 0;
    std::uint64_t round_max_frag_ = 1;
    sim_metrics metrics_;
};

// --- per-token walk replica --------------------------------------------------
//
// The pre-binomial walk_ensemble_node: one lazy coin + one port draw per
// resident token per round. Runs on the current flat engine so the
// comparison isolates the sampling change.

class per_token_walk_node {
public:
    using message_type = walk_msg;

    per_token_walk_node(std::size_t degree, std::uint64_t tokens, std::uint64_t rounds)
        : degree_(degree), resident_(tokens), rounds_(rounds) {}

    void on_round(node_ctx<walk_msg>& ctx, inbox_view<walk_msg> inbox) {
        for (const auto& [port, msg] : inbox) {
            (void)port;
            resident_ += msg.count;
        }
        if (ctx.round() >= rounds_) {
            ctx.halt();
            return;
        }
        if (resident_ == 0 || degree_ == 0) return;
        if (out_.size() != degree_) out_.assign(degree_, 0);
        touched_.clear();
        std::uint64_t staying = 0;
        for (std::uint64_t t = 0; t < resident_; ++t) {
            if (ctx.rng().bit()) {
                const auto p = static_cast<port_id>(ctx.rng().below(degree_));
                if (out_[p]++ == 0) touched_.push_back(p);
            } else {
                ++staying;
            }
        }
        resident_ = staying;
        for (port_id p : touched_) {
            ctx.send(p, walk_msg{out_[p]});
            out_[p] = 0;
        }
    }

    [[nodiscard]] std::uint64_t resident() const noexcept { return resident_; }

private:
    std::size_t degree_;
    std::uint64_t resident_;
    std::uint64_t rounds_;
    std::vector<std::uint64_t> out_;
    std::vector<port_id> touched_;
};

// --- measurement helpers -----------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

struct round_throughput {
    double flat_mmsg_s = 0;
    double legacy_mmsg_s = 0;
    std::uint64_t rounds = 0;
};

// Best-of-5 measured segments after a warmup, flat and legacy segments
// interleaved so shared-runner drift hits both sides alike and cancels
// out of the speedup ratio.
round_throughput measure_rounds(const graph& g, std::uint64_t rounds) {
    round_throughput out;
    out.rounds = rounds;
    const double msgs_per_round = static_cast<double>(2 * g.num_edges());
    engine<all_ports_proc> flat(g, 1);
    flat.spawn([&](std::size_t u) {
        return all_ports_proc(g.degree(static_cast<node_id>(u)));
    });
    legacy_engine legacy(g, 1);
    flat.run_rounds(rounds / 10 + 1);    // warmup (caches settle)
    legacy.run_rounds(rounds / 10 + 1);  // warmup (vectors reach capacity)
    const auto throughput = [&](auto& eng) {
        const auto t0 = std::chrono::steady_clock::now();
        eng.run_rounds(rounds);
        return msgs_per_round * static_cast<double>(rounds) / seconds_since(t0) / 1e6;
    };
    for (int rep = 0; rep < 5; ++rep) {
        out.flat_mmsg_s = std::max(out.flat_mmsg_s, throughput(flat));
        out.legacy_mmsg_s = std::max(out.legacy_mmsg_s, throughput(legacy));
    }
    return out;
}

struct walk_timing {
    double binomial_s = 0;
    double per_token_s = 0;
    std::vector<std::uint64_t> binomial_resident, per_token_final_total;
};

template <class Node>
double time_walk(const graph& g, std::uint64_t tokens, std::uint64_t rounds,
                 std::uint64_t seed, std::uint64_t* total_out) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        engine<Node> eng(g, seed, congest_budget::unlimited());
        eng.spawn([&](std::size_t u) {
            return Node(g.degree(static_cast<node_id>(u)), u == 0 ? tokens : 0, rounds);
        });
        eng.run_until_halted(rounds + 2);
        const double s = seconds_since(t0);
        if (s < best) best = s;
        std::uint64_t total = 0;
        for (std::size_t u = 0; u < g.num_nodes(); ++u) total += eng.node(u).resident();
        *total_out = total;
    }
    return best;
}

// Sharded-vs-serial identity on one family: walk ensemble digest match.
bool parallel_identical(graph_family f, std::size_t n, std::uint64_t seed) {
    const graph g = make_family(f, n, seed);
    auto run = [&](std::size_t node_jobs) {
        scoped_engine_parallelism par(engine_parallelism{nullptr, node_jobs});
        return run_walk_ensemble(g, 0, 2000, 32, seed + 1);
    };
    const walk_ensemble_result a = run(1);
    const walk_ensemble_result b = run(2);
    return a.resident == b.resident && a.totals.messages == b.totals.messages &&
           a.totals.bits == b.totals.bits;
}

// --- output / baseline gate --------------------------------------------------

struct options {
    bool quick = false;
    bool csv = false;
    bool json = false;
    std::string json_out;
    std::string check;
};

struct emitted {
    std::string title;
    text_table table;
};

void emit(std::vector<emitted>& sink, const options& opt, const std::string& title,
          const text_table& t) {
    std::cout << "\n== " << title << " ==\n";
    t.print(std::cout);
    if (opt.csv) {
        std::cout << "-- csv --\n";
        t.print_csv(std::cout);
    }
    if (opt.json) {
        std::cout << "-- json --\n";
        t.print_json(std::cout, title);
    }
    std::cout.flush();
    sink.push_back(emitted{title, t});
}

// Parses a formatted cell ("1,234", "12.34", "8.52x") as a double.
double cell_number(const std::string& s) {
    std::string clean;
    for (char c : s) {
        if (c != ',' && c != 'x') clean.push_back(c);
    }
    return std::strtod(clean.c_str(), nullptr);
}

// Baseline gate: every (table, row-key, column) in `checks` must be at
// least baseline/3; identity cells must equal "yes" in both.
struct gate_column {
    std::string title;     // table title
    std::string key;       // header of the row-key column
    std::string column;    // header of the gated column
    bool identity = false; // "yes"-match instead of ratio
};

int run_check(const std::string& path, const std::vector<emitted>& tables,
              const std::vector<gate_column>& checks) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "check: cannot open baseline '%s'\n", path.c_str());
        return 1;
    }
    std::map<std::string, json_value> baseline;  // title -> object
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        json_value v = json_parse(line);
        std::string title = v.at("title").as_string();
        baseline.emplace(std::move(title), std::move(v));
    }
    // Current values, via the same JSON serialization.
    std::map<std::string, json_value> current;
    for (const auto& e : tables) {
        std::ostringstream os;
        e.table.print_json(os, e.title);
        current.emplace(e.title, json_parse(os.str()));
    }
    int failures = 0;
    for (const auto& c : checks) {
        auto bit = baseline.find(c.title);
        auto cit = current.find(c.title);
        if (bit == baseline.end() || cit == current.end()) {
            std::fprintf(stderr, "check: table '%s' missing (baseline: %s, current: %s)\n",
                         c.title.c_str(), bit == baseline.end() ? "no" : "yes",
                         cit == current.end() ? "no" : "yes");
            ++failures;
            continue;
        }
        // Index baseline rows by key column.
        std::map<std::string, const json_value*> base_rows;
        for (const auto& row : bit->second.at("rows").as_array()) {
            base_rows.emplace(row.at(c.key).as_string(), &row);
        }
        for (const auto& row : cit->second.at("rows").as_array()) {
            const std::string& key = row.at(c.key).as_string();
            auto b = base_rows.find(key);
            if (b == base_rows.end()) continue;  // new workload: not gated yet
            const std::string& cur_cell = row.at(c.column).as_string();
            const std::string& base_cell = b->second->at(c.column).as_string();
            if (c.identity) {
                if (cur_cell != "yes") {
                    std::fprintf(stderr, "check: %s / %s / %s = '%s' (must be 'yes')\n",
                                 c.title.c_str(), key.c_str(), c.column.c_str(),
                                 cur_cell.c_str());
                    ++failures;
                }
                continue;
            }
            const double cur = cell_number(cur_cell);
            const double base = cell_number(base_cell);
            if (base > 0 && cur < base / 3.0) {
                std::fprintf(stderr,
                             "check: hard regression: %s / %s / %s = %.3g, "
                             "baseline %.3g (floor %.3g)\n",
                             c.title.c_str(), key.c_str(), c.column.c_str(), cur,
                             base, base / 3.0);
                ++failures;
            }
        }
    }
    if (failures == 0) {
        std::printf("check: OK — all gated columns within 3x of '%s'\n", path.c_str());
    }
    return failures == 0 ? 0 : 1;
}

int run(const options& opt) {
    std::vector<emitted> tables;

    // --- 1. round dispatch: flat slots vs legacy vector inboxes ---
    struct workload {
        const char* name;
        graph g;
        std::uint64_t rounds;
    };
    std::vector<workload> workloads;
    const std::uint64_t r_mult = opt.quick ? 1 : 10;
    workloads.push_back({"clique(256)", make_complete(256), 30 * r_mult});
    workloads.push_back({"torus(32x32)", make_torus(32, 32), 300 * r_mult});
    workloads.push_back({"dumbbell(128)", make_family(graph_family::dumbbell, 128, 1),
                         200 * r_mult});
    workloads.push_back({"ba(1024)", make_family(graph_family::barabasi_albert, 1024, 1),
                         100 * r_mult});

    text_table t1({"workload", "n", "m", "rounds", "flat Mmsg/s", "legacy Mmsg/s",
                   "speedup"});
    for (auto& w : workloads) {
        const round_throughput r = measure_rounds(w.g, w.rounds);
        t1.add_row({w.name, fmt_count(w.g.num_nodes()), fmt_count(w.g.num_edges()),
                    fmt_count(r.rounds), fmt_fixed(r.flat_mmsg_s, 2),
                    fmt_fixed(r.legacy_mmsg_s, 2),
                    fmt_ratio(r.flat_mmsg_s / r.legacy_mmsg_s)});
    }
    emit(tables, opt, "engine round throughput", t1);

    // --- 2. walk ensembles: binomial rounds vs per-token rounds ---
    text_table t2({"graph", "tokens", "rounds", "binomial s", "per-token s",
                   "speedup", "Mtokens/s"});
    struct walk_case {
        const char* name;
        graph g;
        std::uint64_t tokens;
        std::uint64_t rounds;
    };
    std::vector<walk_case> walks;
    walks.push_back({"dumbbell(128)", make_family(graph_family::dumbbell, 128, 1),
                     opt.quick ? 100'000ull : 1'000'000ull, 64});
    walks.push_back({"caveman(120)",
                     make_family(graph_family::connected_caveman, 120, 1),
                     opt.quick ? 100'000ull : 1'000'000ull, 64});
    for (auto& w : walks) {
        std::uint64_t total_b = 0, total_t = 0;
        const double sb =
            time_walk<walk_ensemble_node>(w.g, w.tokens, w.rounds, 7, &total_b);
        const double st =
            time_walk<per_token_walk_node>(w.g, w.tokens, w.rounds, 7, &total_t);
        if (total_b != w.tokens || total_t != w.tokens) {
            std::fprintf(stderr, "token conservation violated: %llu/%llu vs %llu\n",
                         static_cast<unsigned long long>(total_b),
                         static_cast<unsigned long long>(total_t),
                         static_cast<unsigned long long>(w.tokens));
            return 2;
        }
        const double token_steps =
            static_cast<double>(w.tokens) * static_cast<double>(w.rounds);
        t2.add_row({w.name, fmt_count(w.tokens), fmt_count(w.rounds), fmt_fixed(sb, 3),
                    fmt_fixed(st, 3), fmt_ratio(st / sb),
                    fmt_fixed(token_steps / sb / 1e6, 1)});
    }
    emit(tables, opt, "walk ensemble throughput", t2);

    // --- 3. sharded rounds identical to serial, across the whole zoo ---
    text_table t3({"family", "n", "identical"});
    const std::size_t ident_n = opt.quick ? 24 : 64;
    bool all_identical = true;
    for (graph_family f : all_families()) {
        const bool ok = parallel_identical(f, ident_n, 3);
        all_identical = all_identical && ok;
        t3.add_row({to_string(f), fmt_count(ident_n), ok ? "yes" : "NO"});
    }
    emit(tables, opt, "parallel step identity", t3);
    if (!all_identical) {
        std::fprintf(stderr, "parallel step diverged from serial — engine bug\n");
        return 2;
    }

    if (!opt.json_out.empty()) {
        std::ofstream out(opt.json_out);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n", opt.json_out.c_str());
            return 2;
        }
        for (const auto& e : tables) e.table.print_json(out, e.title);
    }

    if (!opt.check.empty()) {
        // Gate the *speedup* columns, not absolute throughput: both sides
        // of each ratio run on the same machine in the same process, so
        // the gate is machine-independent — a slower CI runner shifts
        // flat and legacy alike and the ratio survives.
        const std::vector<gate_column> checks = {
            {"engine round throughput", "workload", "speedup", false},
            {"walk ensemble throughput", "graph", "speedup", false},
            {"parallel step identity", "family", "identical", true},
        };
        return run_check(opt.check, tables, checks);
    }
    return 0;
}

}  // namespace
}  // namespace anole

int main(int argc, char** argv) {
    anole::options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const auto value = [&](const char* flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--quick") {
            opt.quick = true;
        } else if (a == "--csv") {
            opt.csv = true;
        } else if (a == "--json") {
            opt.json = true;
        } else if (a == "--json-out") {
            opt.json_out = value("--json-out");
        } else if (a == "--check") {
            opt.check = value("--check");
        } else if (a == "--help" || a == "-h") {
            std::printf("flags: --quick | --csv | --json | --json-out FILE |"
                        " --check FILE\n");
            return 0;
        } else {
            std::fprintf(stderr, "error: unknown flag '%s' (try --help)\n", a.c_str());
            return 2;
        }
    }
    return anole::run(opt);
}
